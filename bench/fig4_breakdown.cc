// Figure 4: component breakdown — Carrefour-2M alone, the conservative
// component (original 4KB Carrefour + THP re-enabling), the reactive
// component (THP + Carrefour + splitting), and full Carrefour-LP, all
// relative to default Linux.
//
// Paper shape: the combination is always best or near-best. Conservative
// alone misses startup large-page benefits (allocation-heavy workloads);
// reactive alone mis-splits on LAR misestimates (SSCA on A, SPECjbb on B)
// with no way to re-create the pages it split.
#include "bench/bench_util.h"
#include "src/topo/topology.h"

int main(int argc, char** argv) {
  const numalp::report::ToolInfo info = {
      "fig4_breakdown", "fig4",
      "Figure 4: Carrefour-LP component breakdown vs Linux-4K"};
  return numalp_bench::RunFigureBench(
      argc, argv, info, {numalp::Topology::MachineA(), numalp::Topology::MachineB()},
      numalp::AffectedSubset(),
      {numalp::PolicyKind::kCarrefour2M, numalp::PolicyKind::kConservativeOnly,
       numalp::PolicyKind::kReactiveOnly, numalp::PolicyKind::kCarrefourLp},
      /*seeds=*/2);
}
