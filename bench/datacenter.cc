// Datacenter-scale figure (DESIGN.md Section 13): does the paper's
// split-then-place conclusion — Carrefour-LP demotes contested large pages
// and places the pieces, beating always-2M Carrefour — survive machines the
// paper never measured?
//
//   epyc8: 2-socket EPYC, 8 NUMA nodes (NPS4), non-uniform 1/2-hop matrix.
//   snc16: 4-socket sub-NUMA-clustered Xeon, 16 nodes, up to 3 hops.
//   cxl:   epyc8 compute complex with tight local DRAM plus two CPU-less
//          CXL expanders (extra service latency, interleave-excluded).
//
// Three workload archetypes carry the question: CG.D (few hot pages —
// migration cannot balance them, the split-then-place flagship), UA.B
// (page-level false sharing — split-and-localize), SSCA.20 (migration/
// interleave suffices — the case always-2M handles well). The committed
// summary (BENCH_datacenter.json) feeds the datacenter checks in
// src/report/checks.cc, which encode the measured answer: splitting still
// wins on the hot-page column at 8 and 16 nodes and with the far tier.
#include "bench/bench_util.h"
#include "src/topo/topology.h"

int main(int argc, char** argv) {
  const numalp::report::ToolInfo info = {
      "datacenter", "datacenter",
      "Split-then-place vs always-2M at datacenter scale: 8/16-node and "
      "CXL-tiered machines"};
  return numalp_bench::RunFigureBench(
      argc, argv, info,
      {numalp::Topology::Epyc8(), numalp::Topology::Snc16(), numalp::Topology::Cxl()},
      {numalp::BenchmarkId::kCG_D, numalp::BenchmarkId::kUA_B, numalp::BenchmarkId::kSSCA},
      {numalp::PolicyKind::kThp, numalp::PolicyKind::kCarrefour2M,
       numalp::PolicyKind::kCarrefourLp},
      /*seeds=*/3);
}
