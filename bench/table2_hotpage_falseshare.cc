// Table 2: PAMUP (proportion of accesses to the most-used page), NHP (number
// of hot pages, > 6% of accesses), PSP (proportion of accesses to pages
// shared by >= 2 threads), imbalance and LAR for SPECjbb, CG.D and UA.B on
// machine A, under Linux-4K / THP / Carrefour-2M. The metrics live in the
// pamup_pct / nhp / psp_pct / imbalance_pct / lar_pct row fields.
//
// Paper values:
//   SPECjbb: PAMUP 2/6/6, NHP 0/0/0, PSP 10/36/36, imb 16/39/19, LAR 26/28/27
//   CG.D:    PAMUP 0/8/8, NHP 0/3/3, PSP 18/34/34, imb  0/20/20, LAR 45/45/45
//   UA.B:    PAMUP 6/6/6, NHP 0/0/0, PSP 16/70/70, imb  9/15/17, LAR 90/61/58
#include "bench/bench_util.h"
#include "src/topo/topology.h"

int main(int argc, char** argv) {
  const numalp::report::ToolInfo info = {
      "table2_hotpage_falseshare", "table2",
      "Table 2: hot-page and false-sharing metrics on machine A"};
  return numalp_bench::RunFigureBench(
      argc, argv, info, {numalp::Topology::MachineA()},
      {numalp::BenchmarkId::kSPECjbb, numalp::BenchmarkId::kCG_D, numalp::BenchmarkId::kUA_B},
      {numalp::PolicyKind::kLinux4K, numalp::PolicyKind::kThp,
       numalp::PolicyKind::kCarrefour2M},
      /*seeds=*/3);
}
