// Table 2: PAMUP (proportion of accesses to the most-used page), NHP (number
// of hot pages, > 6% of accesses), PSP (proportion of accesses to pages
// shared by >= 2 threads), imbalance and LAR for SPECjbb, CG.D and UA.B on
// machine A, under Linux-4K / THP / Carrefour-2M.
//
// Paper values:
//   SPECjbb: PAMUP 2/6/6, NHP 0/0/0, PSP 10/36/36, imb 16/39/19, LAR 26/28/27
//   CG.D:    PAMUP 0/8/8, NHP 0/3/3, PSP 18/34/34, imb  0/20/20, LAR 45/45/45
//   UA.B:    PAMUP 6/6/6, NHP 0/0/0, PSP 16/70/70, imb  9/15/17, LAR 90/61/58
#include <cstdio>
#include <string>

#include "src/core/runner.h"
#include "src/topo/topology.h"

int main() {
  std::printf("Table 2: hot-page and false-sharing metrics on machine A\n\n");
  numalp::ExperimentGrid grid;
  grid.machines = {numalp::Topology::MachineA()};
  grid.workloads = {numalp::BenchmarkId::kSPECjbb, numalp::BenchmarkId::kCG_D,
                    numalp::BenchmarkId::kUA_B};
  grid.policies = {numalp::PolicyKind::kLinux4K, numalp::PolicyKind::kThp,
                   numalp::PolicyKind::kCarrefour2M};
  grid.num_seeds = 3;
  grid.sim = numalp::WithEnvOverrides(numalp::SimConfig{});
  const numalp::GridResults results = numalp::RunGrid(grid);

  for (std::size_t w = 0; w < grid.workloads.size(); ++w) {
    const auto summaries = results.SummarizeAll(0, static_cast<int>(w));
    std::printf("%s\n", std::string(numalp::NameOf(grid.workloads[w])).c_str());
    std::printf("  %-12s %10s %10s %14s\n", "metric", "Linux", "THP", "Carrefour-2M");
    std::printf("  %-12s", "PAMUP");
    for (const auto& s : summaries) {
      std::printf(" %9.1f%%", s.pamup_pct);
    }
    std::printf("\n  %-12s", "NHP");
    for (const auto& s : summaries) {
      std::printf(" %10.1f", s.nhp);
    }
    std::printf("\n  %-12s", "PSP");
    for (const auto& s : summaries) {
      std::printf(" %9.1f%%", s.psp_pct);
    }
    std::printf("\n  %-12s", "Imbalance");
    for (const auto& s : summaries) {
      std::printf(" %9.1f%%", s.imbalance_pct);
    }
    std::printf("\n  %-12s", "LAR");
    for (const auto& s : summaries) {
      std::printf(" %9.1f%%", s.lar_pct);
    }
    std::printf("\n\n");
  }
  return 0;
}
