// Robustness sweep (DESIGN.md Section 12): graceful degradation under the
// deterministic frag fault profile. The migration-rescued column
// (machine A, SSCA.20 — Figure 2's "interleaving suffices" case) runs twice
// per seed — once fault-free, once with pinned-fragmented buddy lists where
// a 2MB migration's target-node contiguity mostly isn't there — under
// Linux-4K, THP, always-2M Carrefour-2M and Carrefour-LP. Every row is
// variant-tagged ("faults=off" / "faults=frag") so the default-configuration
// paper checks ignore the sweep, and each variant carries its own same-seed
// Linux-4K baseline so improvements compare like with like.
//
// The committed expectation (`carrefour-lp-graceful-under-frag`):
// Carrefour-2M's whole rescue rides on successful 2MB migrations, so under
// frag it falls off a cliff back to THP's loss; Carrefour-LP observes the
// migration failures, discounts its migration estimate, and pivots to
// splitting + 4KB migration (whose contiguity demand fragmentation cannot
// deny), so its loss vs its own fault-free run stays bounded.
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/core/faults.h"
#include "src/core/runner.h"
#include "src/report/collector.h"
#include "src/report/options.h"
#include "src/topo/topology.h"
#include "src/workloads/spec.h"

int main(int argc, char** argv) {
  const numalp::report::ToolInfo info = {
      "fault_grace", "faultgrace",
      "Robustness: Carrefour-LP vs always-2M Carrefour under the frag fault "
      "profile (machine A, SSCA.20)"};
  const numalp::report::Options options = numalp::report::ParseToolArgs(argc, argv, info);
  const numalp::Topology topo = numalp::Topology::MachineA();
  constexpr int kSeeds = 3;

  const std::vector<numalp::FaultProfile> profiles = {numalp::FaultProfile::kOff,
                                                      numalp::FaultProfile::kFrag};
  const std::vector<numalp::PolicyKind> policies = {numalp::PolicyKind::kThp,
                                                    numalp::PolicyKind::kCarrefour2M,
                                                    numalp::PolicyKind::kCarrefourLp};

  // Variant-major, then seed: per (variant, seed) one Linux-4K baseline
  // followed by the policy cells that compare against it.
  std::vector<numalp::RunSpec> cells;
  std::vector<numalp::report::GridReport::CellMeta> meta;
  for (const numalp::FaultProfile profile : profiles) {
    const std::string variant =
        std::string("faults=") + std::string(numalp::NameOf(profile));
    for (int s = 0; s < kSeeds; ++s) {
      numalp::RunSpec base;
      base.topo = topo;
      base.workload = numalp::MakeWorkloadSpec(numalp::BenchmarkId::kSSCA, topo);
      base.policy = numalp::MakePolicyConfig(numalp::PolicyKind::kLinux4K);
      base.sim = options.sim;
      base.sim.seed = options.sim.seed + static_cast<std::uint64_t>(s);
      base.sim.faults.profile = profile;
      const int baseline = static_cast<int>(cells.size());
      cells.push_back(base);
      meta.push_back({variant, -1, s});
      for (const numalp::PolicyKind kind : policies) {
        numalp::RunSpec cell = base;
        cell.policy = numalp::MakePolicyConfig(kind);
        cells.push_back(cell);
        meta.push_back({variant, baseline, s});
      }
    }
  }

  numalp::report::GridReport report(options, info);
  report.RunCells(cells, meta);
  return 0;
}
