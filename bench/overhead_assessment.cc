// Section 4.2: overhead assessment. Carrefour-LP vs the reactive approach
// (negligible: 1-2%, worst ~3.2%), vs Carrefour-2M (max 3.7% on A / 3.2% on
// B, mean < 2%), and vs Linux-4K (< 3% except the large-page-migration
// cases FT, IS, LU).
#include <algorithm>
#include <cstdio>
#include <string>

#include "src/core/runner.h"
#include "src/topo/topology.h"

namespace {

void Assess(const numalp::GridResults& results, const numalp::Topology& topo, int machine,
            const std::vector<numalp::BenchmarkId>& benches) {
  std::printf("Overhead on %s (runtime normalized; negative = Carrefour-LP slower)\n",
              topo.name().c_str());
  std::printf("%-16s %14s %14s %14s %10s\n", "benchmark", "LP-vs-Reactive",
              "LP-vs-Carr2M", "LP-vs-Linux4K", "LP-ovh%");
  double worst_vs_reactive = 0.0;
  double worst_vs_c2m = 0.0;
  for (std::size_t w = 0; w < benches.size(); ++w) {
    const auto summaries = results.SummarizeAll(machine, static_cast<int>(w));
    const double lp = summaries[2].mean_improvement_pct;
    const double vs_reactive = lp - summaries[0].mean_improvement_pct;
    const double vs_c2m = lp - summaries[1].mean_improvement_pct;
    worst_vs_reactive = std::min(worst_vs_reactive, vs_reactive);
    worst_vs_c2m = std::min(worst_vs_c2m, vs_c2m);
    std::printf("%-16s %+13.1f%% %+13.1f%% %+13.1f%% %9.1f%%\n",
                std::string(numalp::NameOf(benches[w])).c_str(), vs_reactive, vs_c2m, lp,
                100.0 * summaries[2].overhead_frac);
  }
  std::printf("worst regression vs Reactive: %.1f%%, vs Carrefour-2M: %.1f%%\n\n",
              worst_vs_reactive, worst_vs_c2m);
}

}  // namespace

int main() {
  std::printf("Section 4.2: Carrefour-LP overhead assessment\n\n");
  numalp::ExperimentGrid grid;
  grid.machines = {numalp::Topology::MachineA(), numalp::Topology::MachineB()};
  grid.workloads = numalp::FullSuite();
  grid.policies = {numalp::PolicyKind::kReactiveOnly, numalp::PolicyKind::kCarrefour2M,
                   numalp::PolicyKind::kCarrefourLp};
  grid.num_seeds = 2;
  grid.sim = numalp::WithEnvOverrides(numalp::SimConfig{});
  const numalp::GridResults results = numalp::RunGrid(grid);
  for (std::size_t m = 0; m < grid.machines.size(); ++m) {
    Assess(results, grid.machines[m], static_cast<int>(m), grid.workloads);
  }
  return 0;
}
