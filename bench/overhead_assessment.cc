// Section 4.2: overhead assessment. Carrefour-LP vs the reactive approach
// (negligible: 1-2%, worst ~3.2%), vs Carrefour-2M (max 3.7% on A / 3.2% on
// B, mean < 2%), and vs Linux-4K (< 3% except the large-page-migration
// cases FT, IS, LU). The per-policy rows (improvement_pct, overhead_pct)
// carry the comparison; diff the policies with numalp_report.
#include "bench/bench_util.h"
#include "src/topo/topology.h"

int main(int argc, char** argv) {
  const numalp::report::ToolInfo info = {
      "overhead_assessment", "overhead",
      "Section 4.2: Carrefour-LP overhead vs Reactive / Carrefour-2M / Linux-4K"};
  return numalp_bench::RunFigureBench(
      argc, argv, info, {numalp::Topology::MachineA(), numalp::Topology::MachineB()},
      numalp::FullSuite(),
      {numalp::PolicyKind::kReactiveOnly, numalp::PolicyKind::kCarrefour2M,
       numalp::PolicyKind::kCarrefourLp},
      /*seeds=*/2);
}
