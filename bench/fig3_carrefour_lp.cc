// Figure 3: Carrefour-LP and THP vs default Linux on the NUMA-affected
// applications.
//
// Paper shape: Carrefour-LP restores the performance THP lost on CG.D and
// UA.B/UA.C (by splitting hot / falsely-shared pages), unlocks THP's benefit
// on SSCA and SPECjbb, and never costs more than a few percent elsewhere.
#include "bench/bench_util.h"
#include "src/topo/topology.h"

int main() {
  numalp::SimConfig sim;
  const std::vector<numalp::PolicyKind> policies = {numalp::PolicyKind::kThp,
                                                    numalp::PolicyKind::kCarrefourLp};
  numalp_bench::PrintFigureBlock("Figure 3: improvement over Linux-4K",
                                 numalp::Topology::MachineA(), numalp::AffectedSubset(),
                                 policies, sim, /*seeds=*/3);
  numalp_bench::PrintFigureBlock("Figure 3: improvement over Linux-4K",
                                 numalp::Topology::MachineB(), numalp::AffectedSubset(),
                                 policies, sim, /*seeds=*/3);
  return 0;
}
