// Figure 3: Carrefour-LP and THP vs default Linux on the NUMA-affected
// applications.
//
// Paper shape: Carrefour-LP restores the performance THP lost on CG.D and
// UA.B/UA.C (by splitting hot / falsely-shared pages), unlocks THP's benefit
// on SSCA and SPECjbb, and never costs more than a few percent elsewhere.
#include "bench/bench_util.h"
#include "src/topo/topology.h"

int main(int argc, char** argv) {
  const numalp::report::ToolInfo info = {
      "fig3_carrefour_lp", "fig3",
      "Figure 3: Carrefour-LP and THP vs Linux-4K on the THP-degraded applications"};
  return numalp_bench::RunFigureBench(
      argc, argv, info, {numalp::Topology::MachineA(), numalp::Topology::MachineB()},
      numalp::AffectedSubset(),
      {numalp::PolicyKind::kThp, numalp::PolicyKind::kCarrefourLp}, /*seeds=*/3);
}
