// Figure 3: Carrefour-LP and THP vs default Linux on the NUMA-affected
// applications.
//
// Paper shape: Carrefour-LP restores the performance THP lost on CG.D and
// UA.B/UA.C (by splitting hot / falsely-shared pages), unlocks THP's benefit
// on SSCA and SPECjbb, and never costs more than a few percent elsewhere.
#include "bench/bench_util.h"
#include "src/topo/topology.h"

int main() {
  numalp_bench::PrintFigureBlocks(
      "Figure 3: improvement over Linux-4K",
      {numalp::Topology::MachineA(), numalp::Topology::MachineB()}, numalp::AffectedSubset(),
      {numalp::PolicyKind::kThp, numalp::PolicyKind::kCarrefourLp},
      numalp::WithEnvOverrides(numalp::SimConfig{}), /*seeds=*/3);
  return 0;
}
