// Figure 5: THP and Carrefour-LP vs default Linux on the applications whose
// NUMA metrics are NOT affected by THP.
//
// Paper shape: Carrefour-LP's overhead does not significantly hurt these
// applications, and EP.C, SP.B and pca (which had pre-existing NUMA issues
// that THP neither caused nor cured) run much faster under Carrefour-LP
// because its Carrefour-2M component repairs them.
#include "bench/bench_util.h"
#include "src/topo/topology.h"

int main(int argc, char** argv) {
  const numalp::report::ToolInfo info = {
      "fig5_unaffected", "fig5",
      "Figure 5: THP and Carrefour-LP vs Linux-4K on the unaffected applications"};
  return numalp_bench::RunFigureBench(
      argc, argv, info, {numalp::Topology::MachineA(), numalp::Topology::MachineB()},
      numalp::UnaffectedSubset(),
      {numalp::PolicyKind::kThp, numalp::PolicyKind::kCarrefourLp}, /*seeds=*/3);
}
