// Shared scaffolding for the figure/table benches. Every bench declares its
// sweep (an ExperimentGrid, several grids, or a flat RunSpec list) and its
// ToolInfo, then hands both to a report::GridReport: the whole sweep runs on
// one ExperimentRunner thread pool (--jobs / NUMALP_JOBS; results identical
// at any value, DESIGN.md Section 5) and every cell is emitted as a typed
// ResultRow through the configured sinks (--format stdout, --out-dir files;
// DESIGN.md Section 6). Command-line handling is the uniform parser in
// src/report/options.h — benches add no flags of their own here.
#ifndef NUMALP_BENCH_BENCH_UTIL_H_
#define NUMALP_BENCH_BENCH_UTIL_H_

#include <vector>

#include "src/core/runner.h"
#include "src/report/collector.h"
#include "src/report/options.h"

namespace numalp_bench {

// The standard figure bench: one (machines x workloads x policies x seeds)
// grid, every cell (baselines included) written through the sinks. This is
// the whole main() of fig1-fig5, table2 and the overhead assessment.
inline int RunFigureBench(int argc, char** argv, const numalp::report::ToolInfo& info,
                          const std::vector<numalp::Topology>& machines,
                          const std::vector<numalp::BenchmarkId>& workloads,
                          const std::vector<numalp::PolicyKind>& policies, int seeds) {
  const numalp::report::Options options = numalp::report::ParseToolArgs(argc, argv, info);
  numalp::ExperimentGrid grid;
  grid.machines = machines;
  grid.workloads = workloads;
  grid.policies = policies;
  grid.num_seeds = seeds;
  grid.sim = options.sim;
  numalp::report::GridReport report(options, info);
  report.Run(grid);
  return 0;
}

// Variant for tables that mix (machine, workload) pairs: one grid per
// machine, executed together on one shared pool via RunGrids.
inline int RunFigureBench(int argc, char** argv, const numalp::report::ToolInfo& info,
                          std::vector<numalp::ExperimentGrid> grids) {
  const numalp::report::Options options = numalp::report::ParseToolArgs(argc, argv, info);
  for (numalp::ExperimentGrid& grid : grids) {
    grid.sim = options.sim;
  }
  numalp::report::GridReport report(options, info);
  report.Run(grids);
  return 0;
}

}  // namespace numalp_bench

#endif  // NUMALP_BENCH_BENCH_UTIL_H_
