// Shared scaffolding for the figure/table benches. Every bench declares its
// sweep (an ExperimentGrid, several grids, or a flat RunSpec list) and its
// ToolInfo, then hands both to a report::GridReport: the whole sweep runs on
// one ExperimentRunner thread pool (--jobs / NUMALP_JOBS; results identical
// at any value, DESIGN.md Section 5) and every cell is emitted as a typed
// ResultRow through the configured sinks (--format stdout, --out-dir files;
// DESIGN.md Section 6). Command-line handling is the uniform parser in
// src/report/options.h — the one flag added here is --perf FILE, which
// appends a wall-clock record (host seconds + simulated accesses/sec) for
// the sweep to FILE, the raw material of BENCH_perf.json trend tracking.
#ifndef NUMALP_BENCH_BENCH_UTIL_H_
#define NUMALP_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/runner.h"
#include "src/report/collector.h"
#include "src/report/options.h"

namespace numalp_bench {

inline std::uint64_t TotalAccesses(const numalp::GridResults& results) {
  std::uint64_t accesses = 0;
  for (int m = 0; m < results.num_machines(); ++m) {
    for (int w = 0; w < results.num_workloads(); ++w) {
      for (int s = 0; s < results.num_seeds(); ++s) {
        accesses += results.Baseline(m, w, s).totals.accesses;
        for (int p = 0; p < results.num_policies(); ++p) {
          accesses += results.At(m, w, p, s).totals.accesses;
        }
      }
    }
  }
  return accesses;
}

// Appends one JSONL wall-clock record for a finished sweep. Failure to open
// the file is reported but does not fail the bench (perf capture is a
// side channel, never the product).
inline void AppendPerfRecord(const std::string& path, const numalp::report::ToolInfo& info,
                             const numalp::report::Options& options, double seconds,
                             std::uint64_t accesses) {
  std::ofstream out(path, std::ios::app);
  if (!out) {
    std::fprintf(stderr, "%s: cannot open --perf file %s\n", info.name, path.c_str());
    return;
  }
  out.precision(17);
  out << "{\"bench\":\"" << info.bench_id << "\",\"wall_seconds\":" << seconds
      << ",\"accesses\":" << accesses << ",\"accesses_per_sec\":"
      << (seconds > 0 ? static_cast<double>(accesses) / seconds : 0.0)
      << ",\"epochs\":" << options.sim.max_epochs
      << ",\"accesses_per_thread\":" << options.sim.accesses_per_thread_per_epoch
      << ",\"reference_pipeline\":" << (options.sim.reference_pipeline ? "true" : "false")
      << "}\n";
}

// The standard figure bench: one (machines x workloads x policies x seeds)
// grid, every cell (baselines included) written through the sinks. This is
// the whole main() of fig1-fig5, table2 and the overhead assessment.
inline int RunFigureBench(int argc, char** argv, const numalp::report::ToolInfo& info,
                          const std::vector<numalp::Topology>& machines,
                          const std::vector<numalp::BenchmarkId>& workloads,
                          const std::vector<numalp::PolicyKind>& policies, int seeds) {
  std::string perf_path;
  const numalp::report::Options options = numalp::report::ParseToolArgs(
      argc, argv, info,
      {{"--perf", true, [&](const char* v) { perf_path = v; return true; }}});
  numalp::ExperimentGrid grid;
  grid.machines = machines;
  grid.workloads = workloads;
  grid.policies = policies;
  grid.num_seeds = seeds;
  grid.sim = options.sim;
  numalp::report::GridReport report(options, info);
  const auto start = std::chrono::steady_clock::now();
  const numalp::GridResults results = report.Run(grid);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  if (!perf_path.empty()) {
    AppendPerfRecord(perf_path, info, options, seconds, TotalAccesses(results));
  }
  return 0;
}

// Variant for tables that mix (machine, workload) pairs: one grid per
// machine, executed together on one shared pool via RunGrids.
inline int RunFigureBench(int argc, char** argv, const numalp::report::ToolInfo& info,
                          std::vector<numalp::ExperimentGrid> grids) {
  std::string perf_path;
  const numalp::report::Options options = numalp::report::ParseToolArgs(
      argc, argv, info,
      {{"--perf", true, [&](const char* v) { perf_path = v; return true; }}});
  for (numalp::ExperimentGrid& grid : grids) {
    grid.sim = options.sim;
  }
  numalp::report::GridReport report(options, info);
  const auto start = std::chrono::steady_clock::now();
  const std::vector<numalp::GridResults> results = report.Run(grids);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  if (!perf_path.empty()) {
    std::uint64_t accesses = 0;
    for (const numalp::GridResults& grid_results : results) {
      accesses += TotalAccesses(grid_results);
    }
    AppendPerfRecord(perf_path, info, options, seconds, accesses);
  }
  return 0;
}

}  // namespace numalp_bench

#endif  // NUMALP_BENCH_BENCH_UTIL_H_
