// Shared output helpers for the reproduction benches.
#ifndef NUMALP_BENCH_BENCH_UTIL_H_
#define NUMALP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/experiment.h"

namespace numalp_bench {

// Prints one "figure" block: per-benchmark improvement bars for a set of
// policies on one machine, mirroring the paper's bar charts as rows.
inline void PrintFigureBlock(const char* title, const numalp::Topology& topo,
                             const std::vector<numalp::BenchmarkId>& benches,
                             const std::vector<numalp::PolicyKind>& policies,
                             const numalp::SimConfig& sim, int seeds) {
  std::printf("%s — %s\n", title, topo.name().c_str());
  std::printf("%-16s", "benchmark");
  for (numalp::PolicyKind kind : policies) {
    std::printf(" %14s", std::string(numalp::NameOf(kind)).c_str());
  }
  std::printf("\n");
  for (numalp::BenchmarkId bench : benches) {
    const auto summaries = numalp::ComparePolicies(topo, bench, policies, sim, seeds);
    std::printf("%-16s", std::string(numalp::NameOf(bench)).c_str());
    for (const auto& summary : summaries) {
      std::printf(" %+13.1f%%", summary.mean_improvement_pct);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace numalp_bench

#endif  // NUMALP_BENCH_BENCH_UTIL_H_
