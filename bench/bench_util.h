// Shared output helpers for the reproduction benches. Every bench declares
// its sweep as an ExperimentGrid (or a RunSpec list) and hands it to the
// ExperimentRunner, so the full figure executes on one thread pool; set
// NUMALP_JOBS to control the worker count (results are identical at any
// value — see DESIGN.md Section 5).
#ifndef NUMALP_BENCH_BENCH_UTIL_H_
#define NUMALP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/runner.h"

namespace numalp_bench {

// Prints one "figure" block for machine index `machine` of `results`:
// per-benchmark improvement bars for the grid's policies, mirroring the
// paper's bar charts as rows.
inline void PrintFigureBlock(const char* title, const numalp::Topology& topo, int machine,
                             const std::vector<numalp::BenchmarkId>& benches,
                             const std::vector<numalp::PolicyKind>& policies,
                             const numalp::GridResults& results) {
  std::printf("%s — %s\n", title, topo.name().c_str());
  std::printf("%-16s", "benchmark");
  for (numalp::PolicyKind kind : policies) {
    std::printf(" %14s", std::string(numalp::NameOf(kind)).c_str());
  }
  std::printf("\n");
  for (std::size_t w = 0; w < benches.size(); ++w) {
    std::printf("%-16s", std::string(numalp::NameOf(benches[w])).c_str());
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const numalp::PolicySummary summary =
          results.Summarize(machine, static_cast<int>(w), static_cast<int>(p));
      std::printf(" %+13.1f%%", summary.mean_improvement_pct);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

// Runs one grid over all `machines` and prints a figure block per machine —
// the whole multi-machine sweep shares a single thread pool.
inline void PrintFigureBlocks(const char* title, const std::vector<numalp::Topology>& machines,
                              const std::vector<numalp::BenchmarkId>& benches,
                              const std::vector<numalp::PolicyKind>& policies,
                              const numalp::SimConfig& sim, int seeds) {
  numalp::ExperimentGrid grid;
  grid.machines = machines;
  grid.workloads = benches;
  grid.policies = policies;
  grid.num_seeds = seeds;
  grid.sim = sim;
  const numalp::GridResults results = numalp::RunGrid(grid);
  for (std::size_t m = 0; m < machines.size(); ++m) {
    PrintFigureBlock(title, machines[m], static_cast<int>(m), benches, policies, results);
  }
}

}  // namespace numalp_bench

#endif  // NUMALP_BENCH_BENCH_UTIL_H_
