// Section 4.4: very large (1GB) pages.
//
// The paper enabled 1GB pages via libhugetlbfs for SSCA and streamcluster
// and immediately observed the hot-page and false-sharing pathologies: SSCA
// degraded 34%, streamcluster by ~4x — neither had suffered at 2MB. We model
// libhugetlbfs with explicitly 1GB-backed VMAs on a machine B instance with
// memory scale 8 (so each node holds several 1GB frames), and show that
// Carrefour-LP recovers by splitting the offending pages.
#include <cstdio>
#include <string>

#include "src/core/config.h"
#include "src/core/simulation.h"
#include "src/topo/topology.h"
#include "src/workloads/spec.h"

namespace {

numalp::WorkloadSpec With1GbPages(numalp::WorkloadSpec spec) {
  for (auto& region : spec.regions) {
    region.explicit_page = numalp::PageSize::k1G;
  }
  return spec;
}

void RunCase(const numalp::Topology& topo, numalp::BenchmarkId bench) {
  numalp::SimConfig sim;
  numalp::WorkloadSpec base_spec = numalp::MakeWorkloadSpec(bench, topo);
  // Longer steady phase: recovery from a split 1GB page takes a few epochs,
  // and the paper's runs amortize that transient over minutes.
  base_spec.steady_accesses_per_thread *= 3;
  const numalp::WorkloadSpec huge_spec = With1GbPages(base_spec);

  auto run = [&](const numalp::WorkloadSpec& spec, numalp::PolicyKind kind) {
    numalp::Simulation simulation(topo, spec, numalp::MakePolicyConfig(kind), sim);
    return simulation.Run();
  };

  const numalp::RunResult linux4k = run(base_spec, numalp::PolicyKind::kLinux4K);
  const numalp::RunResult thp2m = run(base_spec, numalp::PolicyKind::kThp);
  const numalp::RunResult huge1g = run(huge_spec, numalp::PolicyKind::kLinux4K);
  const numalp::RunResult huge1g_lp = run(huge_spec, numalp::PolicyKind::kCarrefourLp);

  std::printf("%s\n", std::string(numalp::NameOf(bench)).c_str());
  std::printf("  %-22s %10s %8s %8s %8s %6s\n", "config", "vs-4K", "LAR%", "imbal%",
              "PAMUP%", "NHP");
  const struct {
    const char* name;
    const numalp::RunResult* result;
  } rows[] = {{"Linux-4K", &linux4k},
              {"THP-2M", &thp2m},
              {"explicit-1G", &huge1g},
              {"explicit-1G+CarrLP", &huge1g_lp}};
  for (const auto& row : rows) {
    std::printf("  %-22s %+9.1f%% %7.1f %8.1f %8.1f %6d\n", row.name,
                numalp::ImprovementPct(linux4k, *row.result), row.result->LarPct(),
                row.result->ImbalancePct(), row.result->PamupPct(), row.result->Nhp());
  }
  std::printf("  Carrefour-LP splits performed on 1G run: %llu\n\n",
              static_cast<unsigned long long>(huge1g_lp.total_splits));
}

}  // namespace

int main() {
  std::printf("Section 4.4: very large (1GB) pages on machine B (memory scale 8)\n\n");
  const numalp::Topology topo = numalp::Topology::MachineB(/*memory_scale=*/8);
  RunCase(topo, numalp::BenchmarkId::kSSCA);
  RunCase(topo, numalp::BenchmarkId::kStreamcluster);
  return 0;
}
