// Section 4.4: very large (1GB) pages.
//
// The paper enabled 1GB pages via libhugetlbfs for SSCA and streamcluster
// and immediately observed the hot-page and false-sharing pathologies: SSCA
// degraded 34%, streamcluster by ~4x — neither had suffered at 2MB. We model
// libhugetlbfs with explicitly 1GB-backed VMAs on a machine B instance with
// memory scale 8 (so each node holds several 1GB frames), and show that
// Carrefour-LP recovers by splitting the offending pages.
//
// Each benchmark's four configurations are declared as a flat RunSpec list
// (the 1GB cells need a rewritten WorkloadSpec) and run on one thread pool.
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/core/runner.h"
#include "src/topo/topology.h"
#include "src/workloads/spec.h"

namespace {

numalp::WorkloadSpec With1GbPages(numalp::WorkloadSpec spec) {
  for (auto& region : spec.regions) {
    region.explicit_page = numalp::PageSize::k1G;
  }
  return spec;
}

// Cell order per benchmark: Linux-4K, THP-2M, explicit-1G, explicit-1G+LP.
constexpr int kCellsPerCase = 4;

std::vector<numalp::RunSpec> CaseCells(const numalp::Topology& topo,
                                       numalp::BenchmarkId bench) {
  const numalp::SimConfig sim = numalp::WithEnvOverrides(numalp::SimConfig{});
  numalp::WorkloadSpec base_spec = numalp::MakeWorkloadSpec(bench, topo);
  // Longer steady phase: recovery from a split 1GB page takes a few epochs,
  // and the paper's runs amortize that transient over minutes.
  base_spec.steady_accesses_per_thread *= 3;
  const numalp::WorkloadSpec huge_spec = With1GbPages(base_spec);

  auto cell = [&](const numalp::WorkloadSpec& spec, numalp::PolicyKind kind) {
    numalp::RunSpec run;
    run.topo = topo;
    run.workload = spec;
    run.policy = numalp::MakePolicyConfig(kind);
    run.sim = sim;
    return run;
  };
  return {cell(base_spec, numalp::PolicyKind::kLinux4K),
          cell(base_spec, numalp::PolicyKind::kThp),
          cell(huge_spec, numalp::PolicyKind::kLinux4K),
          cell(huge_spec, numalp::PolicyKind::kCarrefourLp)};
}

void PrintCase(numalp::BenchmarkId bench, const numalp::RunResult* runs) {
  const numalp::RunResult& linux4k = runs[0];
  std::printf("%s\n", std::string(numalp::NameOf(bench)).c_str());
  std::printf("  %-22s %10s %8s %8s %8s %6s\n", "config", "vs-4K", "LAR%", "imbal%",
              "PAMUP%", "NHP");
  const char* names[kCellsPerCase] = {"Linux-4K", "THP-2M", "explicit-1G",
                                      "explicit-1G+CarrLP"};
  for (int i = 0; i < kCellsPerCase; ++i) {
    std::printf("  %-22s %+9.1f%% %7.1f %8.1f %8.1f %6d\n", names[i],
                numalp::ImprovementPct(linux4k, runs[i]), runs[i].LarPct(),
                runs[i].ImbalancePct(), runs[i].PamupPct(), runs[i].Nhp());
  }
  std::printf("  Carrefour-LP splits performed on 1G run: %llu\n\n",
              static_cast<unsigned long long>(runs[kCellsPerCase - 1].total_splits));
}

}  // namespace

int main() {
  std::printf("Section 4.4: very large (1GB) pages on machine B (memory scale 8)\n\n");
  const numalp::Topology topo = numalp::Topology::MachineB(/*memory_scale=*/8);
  const numalp::BenchmarkId benches[] = {numalp::BenchmarkId::kSSCA,
                                         numalp::BenchmarkId::kStreamcluster};

  std::vector<numalp::RunSpec> cells;
  for (numalp::BenchmarkId bench : benches) {
    const std::vector<numalp::RunSpec> case_cells = CaseCells(topo, bench);
    cells.insert(cells.end(), case_cells.begin(), case_cells.end());
  }
  const std::vector<numalp::RunResult> results = numalp::ExperimentRunner().Run(cells);

  for (std::size_t b = 0; b < std::size(benches); ++b) {
    PrintCase(benches[b], &results[b * kCellsPerCase]);
  }
  return 0;
}
