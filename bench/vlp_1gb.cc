// Section 4.4: very large (1GB) pages.
//
// The paper enabled 1GB pages via libhugetlbfs for SSCA and streamcluster
// and immediately observed the hot-page and false-sharing pathologies: SSCA
// degraded 34%, streamcluster by ~4x — neither had suffered at 2MB. We model
// libhugetlbfs with explicitly 1GB-backed VMAs on a machine B instance with
// memory scale 8 (so each node holds several 1GB frames), and show that
// Carrefour-LP recovers by splitting the offending pages (the splits row
// field on the 1G+Carrefour-LP rows).
//
// Each benchmark's four configurations are a flat RunSpec list: Linux-4K,
// THP-2M, explicit-1G, explicit-1G + Carrefour-LP, all against the 4K
// baseline. Rows carry a "mem8" variant (non-default memory scale and a 3x
// steady phase) or "mem8-1G" for the 1GB-backed pair.
#include <vector>

#include "src/core/config.h"
#include "src/core/runner.h"
#include "src/report/collector.h"
#include "src/report/options.h"
#include "src/topo/topology.h"
#include "src/workloads/spec.h"

namespace {

numalp::WorkloadSpec With1GbPages(numalp::WorkloadSpec spec) {
  for (auto& region : spec.regions) {
    region.explicit_page = numalp::PageSize::k1G;
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const numalp::report::ToolInfo info = {
      "vlp_1gb", "vlp1g",
      "Section 4.4: explicit 1GB pages (libhugetlbfs model) on machine B"};
  const numalp::report::Options options = numalp::report::ParseToolArgs(argc, argv, info);
  const numalp::Topology topo = numalp::Topology::MachineB(/*memory_scale=*/8);

  std::vector<numalp::RunSpec> cells;
  std::vector<numalp::report::GridReport::CellMeta> meta;
  for (numalp::BenchmarkId bench :
       {numalp::BenchmarkId::kSSCA, numalp::BenchmarkId::kStreamcluster}) {
    numalp::WorkloadSpec base_spec = numalp::MakeWorkloadSpec(bench, topo);
    // Longer steady phase: recovery from a split 1GB page takes a few
    // epochs, and the paper's runs amortize that transient over minutes.
    base_spec.steady_accesses_per_thread *= 3;
    const numalp::WorkloadSpec huge_spec = With1GbPages(base_spec);

    auto cell = [&](const numalp::WorkloadSpec& spec, numalp::PolicyKind kind) {
      numalp::RunSpec run;
      run.topo = topo;
      run.workload = spec;
      run.policy = numalp::MakePolicyConfig(kind);
      run.sim = options.sim;
      return run;
    };
    const int baseline = static_cast<int>(cells.size());
    cells.push_back(cell(base_spec, numalp::PolicyKind::kLinux4K));
    meta.push_back({"mem8", -1, 0});
    cells.push_back(cell(base_spec, numalp::PolicyKind::kThp));
    meta.push_back({"mem8", baseline, 0});
    cells.push_back(cell(huge_spec, numalp::PolicyKind::kLinux4K));
    meta.push_back({"mem8-1G", baseline, 0});
    cells.push_back(cell(huge_spec, numalp::PolicyKind::kCarrefourLp));
    meta.push_back({"mem8-1G", baseline, 0});
  }

  numalp::report::GridReport report(options, info);
  report.RunCells(cells, meta);
  return 0;
}
