// Ablation of the reactive cost/decision model (DESIGN.md Section 8): which
// model component buys which part of the Carrefour-LP fidelity fix?
//
// Five variants of Carrefour-LP run on the workloads that motivated the
// redesign — the three that regressed hardest under the literal Algorithm 1
// transcription (LU.B, MatrixMultiply, SPECjbb: mass demotion on
// over-predicted split gains), UA.B (the false-sharing split that must
// still happen), and CG.D (the hot-page recovery that must not regress):
//
//   lpmodel=full      the shipped model (hysteresis + re-promotion + cost budget)
//   lpmodel=nohyst    hysteresis off — immediate engage/disengage
//   lpmodel=noreprom  re-promotion off — demoted windows stay 4KB forever
//   lpmodel=nobudget  cost model off — threshold-only veto, flat demotion cap
//   lpmodel=alg1      all three off — the paper's literal Algorithm 1
//
// Each variant is one Carrefour-LP cell per (machine, benchmark) against a
// shared Linux-4K baseline, plus one Carrefour-2M reference column per
// benchmark (the yardstick the `carrefour-lp-geq-carrefour` check measures
// against). Expected shape: `alg1`/`nobudget` reproduce the old 30-48%
// regressions on the mass-demotion workloads, `full` tracks Carrefour-2M
// within a few points everywhere while keeping CG.D's recovery.
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/core/runner.h"
#include "src/report/collector.h"
#include "src/report/options.h"
#include "src/topo/topology.h"
#include "src/workloads/spec.h"

namespace {

struct ModelVariant {
  const char* tag;
  numalp::LpModelConfig model;
};

std::vector<ModelVariant> MakeVariants() {
  std::vector<ModelVariant> variants;
  variants.push_back({"lpmodel=full", numalp::LpModelConfig{}});
  numalp::LpModelConfig nohyst;
  nohyst.hysteresis = false;
  variants.push_back({"lpmodel=nohyst", nohyst});
  numalp::LpModelConfig noreprom;
  noreprom.repromotion = false;
  variants.push_back({"lpmodel=noreprom", noreprom});
  numalp::LpModelConfig nobudget;
  nobudget.cost_budget = false;
  variants.push_back({"lpmodel=nobudget", nobudget});
  variants.push_back({"lpmodel=alg1", numalp::LpModelConfig::Algorithm1()});
  return variants;
}

}  // namespace

int main(int argc, char** argv) {
  const numalp::report::ToolInfo info = {
      "ablation_lp_model", "ablation_lp_model",
      "Ablation: the reactive cost/decision model, component by component"};
  const numalp::report::Options options = numalp::report::ParseToolArgs(argc, argv, info);

  const std::vector<numalp::Topology> machines = {numalp::Topology::MachineA(),
                                                  numalp::Topology::MachineB()};
  const std::vector<numalp::BenchmarkId> benches = {
      numalp::BenchmarkId::kCG_D, numalp::BenchmarkId::kLU_B, numalp::BenchmarkId::kUA_B,
      numalp::BenchmarkId::kMatrixMultiply, numalp::BenchmarkId::kSPECjbb};
  const std::vector<ModelVariant> variants = MakeVariants();

  // Flat cell list: per machine, one baseline per benchmark, one untagged
  // Carrefour-2M reference per benchmark, then one Carrefour-LP cell per
  // (variant, benchmark).
  std::vector<numalp::RunSpec> cells;
  std::vector<numalp::report::GridReport::CellMeta> meta;
  for (const numalp::Topology& topo : machines) {
    std::vector<int> baseline_of(benches.size());
    for (std::size_t b = 0; b < benches.size(); ++b) {
      numalp::RunSpec base;
      base.topo = topo;
      base.workload = numalp::MakeWorkloadSpec(benches[b], topo);
      base.policy = numalp::MakePolicyConfig(numalp::PolicyKind::kLinux4K);
      base.sim = options.sim;
      baseline_of[b] = static_cast<int>(cells.size());
      cells.push_back(base);
      meta.push_back({"", -1, 0});
    }
    for (std::size_t b = 0; b < benches.size(); ++b) {
      numalp::RunSpec c2m;
      c2m.topo = topo;
      c2m.workload = numalp::MakeWorkloadSpec(benches[b], topo);
      c2m.policy = numalp::MakePolicyConfig(numalp::PolicyKind::kCarrefour2M);
      c2m.sim = options.sim;
      cells.push_back(c2m);
      meta.push_back({"", baseline_of[b], 0});
    }
    for (const ModelVariant& variant : variants) {
      for (std::size_t b = 0; b < benches.size(); ++b) {
        numalp::RunSpec lp;
        lp.topo = topo;
        lp.workload = numalp::MakeWorkloadSpec(benches[b], topo);
        lp.policy = numalp::MakePolicyConfig(numalp::PolicyKind::kCarrefourLp);
        lp.policy.lp_model = variant.model;
        lp.sim = options.sim;
        cells.push_back(lp);
        meta.push_back({variant.tag, baseline_of[b], 0});
      }
    }
  }

  numalp::report::GridReport report(options, info);
  report.RunCells(cells, meta);
  return 0;
}
